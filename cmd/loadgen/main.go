// Command loadgen drives a multi-client key-value workload against an
// oramd daemon and reports throughput, latency percentiles and the observed
// dummy fraction per scenario.
//
// With -addr it targets a running daemon; without it, loadgen starts an
// in-process oramd on a loopback port and drives that — the one-command
// demo and the configuration the e2e acceptance test mirrors:
//
//	loadgen                                   # in-process, all scenarios
//	loadgen -addr 127.0.0.1:7312 -clients 32  # external daemon
//	loadgen -scenario zipf -ops 5000          # one scenario, heavier run
//
// The dynamic epoch learner goes live with a multi-rate set and an epoch
// schedule; the ramp scenario shows it tracking an offered load that climbs
// phase by phase, with the report's rate-chg/leak-bits columns counting
// exactly what the timing channel gave away:
//
//	loadgen -scenario ramp -ops 400 \
//	        -rates 100,400,1600,6400 -epoch 200000 -growth 2 -leak-budget 64
//
// The recursive, integrity-checked backend (address spaces past a flat
// position map; every level Merkle-verified) serves behind the same flags:
//
//	loadgen -oram recursive -integrity -olat 300 -rates 2700
//
// The batched backend serves up to k distinct blocks per slot and amortizes
// write-back into a deterministic eviction pass every K slots; -batch rides
// the batch_read verb so k client addresses travel in one request and can be
// served by one slot:
//
//	loadgen -oram batched -batch-k 4 -evict-every 4 -olat 100 -rates 400 -batch 4
//
// The cdsi scenario emulates an oblivious contact-discovery service — hot-key
// zipf skew, 2% writes — and pairs with client-side WAN shaping and tenant
// attribution for a production-shaped run:
//
//	loadgen -scenario cdsi -batch 4 -tenant alice \
//	        -tenant-budgets alice=32,bob=64 -wan-kbps 256 -wan-rtt 40ms
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"

	"tcoram/internal/server"
	"tcoram/internal/sim"
	"tcoram/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "", "daemon address; empty = start an in-process oramd")
		scenario = flag.String("scenario", "all", "uniform | zipf | read-mostly | scan | bursty | onoff | ramp | cdsi | all (comma-separable)")
		clients  = flag.Int("clients", 8, "concurrent clients")
		ops      = flag.Int("ops", 500, "operations per client")
		retries  = flag.Int("retries", 4, "attempts per operation across connection loss: a dropped daemon/proxy connection is redialed with backoff instead of failing the run")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		batch    = flag.Int("batch", 1, "reads per batch_read request: consecutive reads coalesce into one wire round trip of up to this many addresses (1 = single-op verbs)")
		tenant   = flag.String("tenant", "", "tenant name stamped on every request (pairs with the server's -tenant-budgets)")
		wanKBps  = flag.Int("wan-kbps", 0, "WAN shaping: serialize each operation's request and response bytes over an emulated link of this bandwidth (0 = off)")
		wanRTT   = flag.Duration("wan-rtt", 0, "WAN shaping: round-trip propagation delay added to every operation")
	)
	// The shared store surface doubles as the workload surface: -blocks,
	// -block-bytes and -seed shape the generated operations whether or not
	// the in-process server is the one serving them.
	sf := server.NewStoreFlags(flag.CommandLine, server.StoreFlagOptions{
		Note:            "in-process: ",
		Blocks:          4096,
		BlocksUsage:     "address space to exercise (must fit the server; sizes the in-process one)",
		BlockBytesUsage: "payload bytes per block (must match the server)",
		SeedUsage:       "workload seed (also seeds the in-process server)",
	})
	flag.Parse()

	cfg, err := sf.Config()
	if err != nil {
		fatal(err)
	}

	target := *addr
	if target == "" {
		st, err := server.New(cfg)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer l.Close()
		go server.Serve(l, st)
		target = l.Addr().String()
		mode := "static"
		if cfg.EpochFirstLen > 0 {
			mode = fmt.Sprintf("dynamic epochs (first %d, growth %d)", cfg.EpochFirstLen, cfg.EpochGrowth)
		}
		fmt.Printf("loadgen: started in-process oramd (%d %s shards, rates %v, %s) on %s\n",
			cfg.Shards, st.Config().BackendLabel(), cfg.Rates, mode, target)
	}

	scenarios, err := pickScenarios(*scenario)
	if err != nil {
		fatal(err)
	}

	wan := server.WANConfig{KBps: *wanKBps, RTT: *wanRTT}
	if wan.Enabled() {
		fmt.Printf("loadgen: WAN shaping on — %d KB/s link, %v RTT per client\n", *wanKBps, *wanRTT)
	}

	// Every connection is a retrying client: a daemon or proxy restart under
	// load surfaces as a redial, not a failed scenario.
	retryCfg := server.RetryConfig{Attempts: *retries}
	statsClient, err := server.RetryDial(target, retryCfg)
	if err != nil {
		fatal(err)
	}
	defer statsClient.Close()

	table := sim.ServiceReportTable("loadgen @ " + target)
	var failures int
	for _, sc := range scenarios {
		// RunLoad never closes what dial returns; collect the per-client
		// connections and close them after each scenario.
		var connMu sync.Mutex
		var conns []*server.RetryClient
		rep, err := server.RunLoad(
			func() (server.KV, error) {
				c, err := server.RetryDial(target, retryCfg)
				if err != nil {
					return nil, err
				}
				connMu.Lock()
				conns = append(conns, c)
				connMu.Unlock()
				return c, nil
			},
			func() (server.Stats, error) { return statsClient.Stats() },
			server.LoadConfig{
				Scenario:     sc,
				Clients:      *clients,
				OpsPerClient: *ops,
				Blocks:       cfg.Blocks,
				BlockBytes:   cfg.BlockBytes,
				Seed:         cfg.Seed,
				Tenant:       *tenant,
				BatchSize:    *batch,
				WAN:          wan,
			})
		for _, c := range conns {
			c.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", sc, err)
			failures++
			continue
		}
		rep.Row(table)
		if rep.Lost > 0 || rep.Corrupted > 0 {
			failures++
		}
	}
	if *csv {
		table.CSV(os.Stdout)
	} else {
		table.Render(os.Stdout)
	}
	// The leakage account is cumulative across the whole serving session;
	// print it after the per-scenario deltas so operators see the total the
	// budget is judged against. A failed fetch must say so — silence would
	// read as "no leakage, no slip".
	if final, err := statsClient.Stats(); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: could not fetch final server stats: %v\n", err)
	} else {
		fmt.Printf("loadgen: %s\n", final.LeakageSummary())
		if warning, ok := final.SlipWarning(); ok {
			fmt.Printf("loadgen: %s\n", warning)
		}
		for _, ts := range final.Tenants {
			fmt.Printf("loadgen: tenant %q leaked %.1f bits over %d transitions (budget %.1f, exceeded %v)\n",
				ts.Tenant, ts.LeakedBits, ts.Transitions, ts.BudgetBits, ts.Exceeded)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d scenario(s) had lost or corrupted operations\n", failures)
		os.Exit(1)
	}
}

func pickScenarios(s string) ([]workload.KVScenario, error) {
	if s == "all" {
		return workload.KVScenarios(), nil
	}
	var out []workload.KVScenario
	for _, part := range strings.Split(s, ",") {
		sc := workload.KVScenario(strings.TrimSpace(part))
		ok := false
		for _, known := range workload.KVScenarios() {
			if sc == known {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown scenario %q (have %v)", sc, workload.KVScenarios())
		}
		out = append(out, sc)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
