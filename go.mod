module tcoram

go 1.23
