module tcoram

go 1.24
