package tcoram

import (
	"strings"
	"testing"
)

// Facade-level tests: the public API a downstream user sees.

func TestWorkloadsSuite(t *testing.T) {
	w := Workloads()
	if len(w) != 11 {
		t.Fatalf("Workloads() = %d entries, want 11", len(w))
	}
	if _, ok := WorkloadByName("mcf"); !ok {
		t.Fatal("WorkloadByName(mcf) missing")
	}
	if _, ok := WorkloadInput("perlbench", "splitmail"); !ok {
		t.Fatal("WorkloadInput(perlbench, splitmail) missing")
	}
	if _, ok := WorkloadInput("astar", "biglakes"); !ok {
		t.Fatal("WorkloadInput(astar, biglakes) missing")
	}
	if _, ok := WorkloadInput("mcf", "x"); ok {
		t.Fatal("WorkloadInput(mcf, x) should not exist")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	spec, _ := WorkloadByName("hmmer")
	res, err := Simulate(spec, Config{
		Scheme: DynamicORAM, Instructions: 2_000_000, WarmupInstrs: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.IPC <= 0 || res.Power.Watts() <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestLeakageBudgetHeadlines(t *testing.T) {
	if got := float64(LeakageBudget(4, 4)); got != 32 {
		t.Fatalf("LeakageBudget(4,4) = %v, want 32", got)
	}
	if got := float64(LeakageBudget(4, 16)); got != 16 {
		t.Fatalf("LeakageBudget(4,16) = %v, want 16", got)
	}
	if got := float64(TotalLeakage(4, 4)); got != 94 {
		t.Fatalf("TotalLeakage(4,4) = %v, want 94", got)
	}
	if float64(UnprotectedLeakage(1e12)) < 1e8 {
		t.Fatal("UnprotectedLeakage should be astronomical")
	}
}

func TestPaperRatesFacade(t *testing.T) {
	r := PaperRates(4)
	if len(r) != 4 || r[0] != 256 || r[3] != 32768 {
		t.Fatalf("PaperRates(4) = %v", r)
	}
}

func TestORAMAccessLatencyNearPaper(t *testing.T) {
	model, paper := ORAMAccessLatency()
	if paper != 1488 {
		t.Fatalf("paper latency = %d", paper)
	}
	if model < paper*8/10 || model > paper*12/10 {
		t.Fatalf("model latency %d not within 20%% of %d", model, paper)
	}
}

func TestRunLeakDemoFacade(t *testing.T) {
	secret := []bool{true, false, true, true, false, false, true, false}
	res := RunLeakDemo(secret)
	if res.UnprotectedBits != len(secret) {
		t.Fatalf("unprotected recovered %d/%d", res.UnprotectedBits, len(secret))
	}
	if !res.ShieldedTraceEq {
		t.Fatal("shielded traces differ across secrets")
	}
}

func TestProtocolFacadeRoundTrip(t *testing.T) {
	proc, err := NewSecureProcessor()
	if err != nil {
		t.Fatal(err)
	}
	user := NewProtocolUser()
	if err := Handshake(user, proc); err != nil {
		t.Fatal(err)
	}
	job, err := user.PrepareJob([]byte("data"), []byte("prog"), Bits(94))
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Admit(job, []byte("prog"), LeakageParams{NumRates: 4, EpochGrowth: 4}); err != nil {
		t.Fatal(err)
	}
	proc.EndSession()
	if err := proc.Admit(job, []byte("prog"), LeakageParams{NumRates: 4, EpochGrowth: 4}); err == nil {
		t.Fatal("replay admitted after EndSession")
	}
}

func TestDemoORAMAndProbe(t *testing.T) {
	o, err := NewDemoORAM(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := NewRootProbe(o)
	if p.Poll() {
		t.Fatal("probe fired with no access")
	}
	if err := o.DummyAccess(); err != nil {
		t.Fatal(err)
	}
	if !p.Poll() {
		t.Fatal("probe missed dummy access")
	}
}

func TestExperimentTablesRender(t *testing.T) {
	// The non-simulation tables must render instantly and contain the
	// paper's constants.
	if out := ExperimentTable1().String(); !strings.Contains(out, "1488") {
		t.Fatalf("Table1 missing 1488:\n%s", out)
	}
	if out := ExperimentTable2().String(); !strings.Contains(out, "984") {
		t.Fatalf("Table2 missing 984:\n%s", out)
	}
	if out := ExperimentLeakage().String(); !strings.Contains(out, "126") {
		t.Fatalf("leakage table missing 126:\n%s", out)
	}
}

func TestBrokenDeterminismFacade(t *testing.T) {
	divergent, at := BrokenDeterminismDemo(1488, 800)
	if !divergent || at == 0 {
		t.Fatalf("expected divergence within 800 cycles of jitter (got %v at %d)", divergent, at)
	}
}
