// Package tcoram is the public facade of the library: it re-exports the
// pieces a downstream user composes — workload specs, simulation configs,
// the leakage calculator, the session protocol, and the experiment
// harness — without reaching into internal packages.
//
// The one-call entry points:
//
//	res, err := tcoram.Simulate(tcoram.Workloads()[0], tcoram.Config{Scheme: tcoram.DynamicORAM})
//	bits := tcoram.LeakageBudget(4, 4) // |R|=4, ×4 epochs → 32 bits
//
// See the examples/ directory for complete programs.
package tcoram

import (
	"tcoram/internal/adversary"
	"tcoram/internal/core"
	"tcoram/internal/crypt"
	"tcoram/internal/dram"
	"tcoram/internal/experiments"
	"tcoram/internal/leakage"
	"tcoram/internal/pathoram"
	"tcoram/internal/protocol"
	"tcoram/internal/sim"
	"tcoram/internal/stats"
	"tcoram/internal/workload"
)

// Re-exported simulation types. Config selects the memory-controller
// scheme, run length and leakage parameters; Result carries cycles, power,
// windows and the rate history.
type (
	// Config parameterizes one simulation run.
	Config = sim.Config
	// Result is the outcome of one run.
	Result = sim.Result
	// Scheme selects the memory controller under test.
	Scheme = sim.Scheme
	// Window is one fixed-instruction stats window.
	Window = sim.Window
	// WorkloadSpec describes a synthetic benchmark.
	WorkloadSpec = workload.Spec
	// Bits is a leakage quantity.
	Bits = leakage.Bits
	// RateChange is one epoch transition (the leaked information).
	RateChange = core.RateChange
	// EpochSchedule is a geometric epoch family.
	EpochSchedule = core.EpochSchedule
	// Table is a renderable result table (text or CSV).
	Table = stats.Table
)

// Scheme values (§9.1.6, plus §10's ORAM-free variant).
const (
	BaseDRAM    = sim.BaseDRAM
	BaseORAM    = sim.BaseORAM
	StaticORAM  = sim.StaticORAM
	DynamicORAM = sim.DynamicORAM
	// ShieldedDRAM applies the rate enforcer to commodity DRAM (§10):
	// zero timing leakage without ORAM's bandwidth cost, but addresses
	// remain visible.
	ShieldedDRAM = sim.ShieldedDRAM
)

// Simulate runs one workload under one configuration.
func Simulate(spec WorkloadSpec, cfg Config) (Result, error) {
	return sim.Run(spec, cfg)
}

// Workloads returns the eleven SPEC-analogue benchmarks of the evaluation
// (Fig 6), in the paper's plotting order.
func Workloads() []WorkloadSpec { return workload.Suite() }

// WorkloadByName returns a benchmark by name ("mcf", "h264ref", ...).
func WorkloadByName(name string) (WorkloadSpec, bool) { return workload.ByName(name) }

// WorkloadInput returns benchmark input variants used by Fig 2:
// perlbench {diffmail, splitmail} and astar {rivers, biglakes}.
func WorkloadInput(name, input string) (WorkloadSpec, bool) {
	switch name {
	case "perlbench":
		return workload.PerlbenchInput(input), true
	case "astar":
		return workload.AstarInput(input), true
	}
	return WorkloadSpec{}, false
}

// LeakageBudget returns the ORAM timing-channel bound of a dynamic scheme
// with |R| = numRates and the given epoch growth factor, under the paper's
// accounting constants (first epoch 2^30 cycles, Tmax = 2^62): |E|·lg|R|
// bits (§6.1).
func LeakageBudget(numRates int, epochGrowth uint64) Bits {
	return leakage.PaperBudget(numRates, epochGrowth).ORAMBits()
}

// TotalLeakage adds the early-termination channel (lg Tmax = 62 bits) to
// the ORAM-channel budget (§9.1.5).
func TotalLeakage(numRates int, epochGrowth uint64) Bits {
	return leakage.PaperBudget(numRates, epochGrowth).TotalBits()
}

// UnprotectedLeakage approximates the trace-count bound of an ORAM with no
// timing protection running for t cycles (Example 6.1) — astronomical for
// realistic t.
func UnprotectedLeakage(t float64) Bits {
	return leakage.UnprotectedBitsApprox(t, pathoram.PaperAccessLatency)
}

// PaperRates returns the §9.2 log-spaced rate set for the given |R|
// (for |R| = 4: {256, 1290, 6501, 32768}).
func PaperRates(n int) []uint64 { return core.PaperRates(n) }

// ORAMAccessLatency reports the per-access latency our DRAM model derives
// for the paper's 4 GB recursive Path ORAM, alongside the paper's 1488.
func ORAMAccessLatency() (modelCycles int64, paperCycles int64) {
	est := pathoram.EstimateAccessLatency(pathoram.PaperConfig(), dram.Default(), crypt.DefaultLatency())
	return est.CPUCycles, pathoram.PaperAccessLatency
}

// Protocol re-exports: the §5/§8 user–server session with run-once replay
// prevention.
type (
	// User is the remote user's protocol endpoint.
	User = protocol.User
	// SecureProcessor is the processor's protocol endpoint.
	SecureProcessor = protocol.Processor
	// Job is an encrypted, HMAC-bound work submission.
	Job = protocol.Job
	// LeakageParams are the server-proposed R/E parameters.
	LeakageParams = protocol.LeakageParams
)

// Adversary re-exports for the attack demos.
type (
	// RootProbe is the §3.2 root-bucket probing attack.
	RootProbe = adversary.Probe
	// MaliciousProgram is Figure 1 (a)'s bit-leaking program.
	MaliciousProgram = adversary.MaliciousProgram
)

// Experiments re-exports: regenerate the paper's tables and figures.
var (
	// ExperimentTable1 renders the Table 1 timing model.
	ExperimentTable1 = experiments.Table1
	// ExperimentTable2 renders the Table 2 energy model.
	ExperimentTable2 = experiments.Table2
	// ExperimentFig2 regenerates Figure 2.
	ExperimentFig2 = experiments.Fig2
	// ExperimentFig5 regenerates Figure 5.
	ExperimentFig5 = experiments.Fig5
	// ExperimentFig6 regenerates Figure 6.
	ExperimentFig6 = experiments.Fig6
	// ExperimentFig7 regenerates Figure 7.
	ExperimentFig7 = experiments.Fig7
	// ExperimentFig8a regenerates Figure 8a.
	ExperimentFig8a = experiments.Fig8a
	// ExperimentFig8b regenerates Figure 8b.
	ExperimentFig8b = experiments.Fig8b
	// ExperimentHeadline renders the §9.3 headline comparison.
	ExperimentHeadline = experiments.HeadlineTable
	// ExperimentLeakage renders the Example 2.1/6.1 arithmetic.
	ExperimentLeakage = experiments.LeakageExamples
)

// ExperimentScale selects run lengths for the experiment harness.
type ExperimentScale = experiments.Scale

// QuickScale is for smoke runs and benches; FullScale produced
// EXPERIMENTS.md.
var (
	QuickScale = experiments.Quick
	FullScale  = experiments.Full
)
