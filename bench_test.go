package tcoram

// One benchmark per table/figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out and micro-benches on the hot
// components. Figure/table benches run the corresponding experiment at
// Quick scale and report the paper-comparable metrics via b.ReportMetric,
// so `go test -bench=.` regenerates every result series. EXPERIMENTS.md
// records the Full-scale numbers.

import (
	"math/rand"
	"testing"

	"tcoram/internal/core"
	"tcoram/internal/crypt"
	"tcoram/internal/dram"
	"tcoram/internal/experiments"
	"tcoram/internal/leakage"
	"tcoram/internal/pathoram"
	"tcoram/internal/power"
	"tcoram/internal/sim"
	"tcoram/internal/workload"
)

// BenchmarkTable1Config regenerates Table 1: the timing model, including
// the ORAM access latency our DRAM model derives (paper: 1488 cycles).
func BenchmarkTable1Config(b *testing.B) {
	var est pathoram.LatencyEstimate
	for i := 0; i < b.N; i++ {
		est = pathoram.EstimateAccessLatency(pathoram.PaperConfig(), dram.Default(), crypt.DefaultLatency())
	}
	b.ReportMetric(float64(est.CPUCycles), "oram-latency-cycles")
	b.ReportMetric(float64(est.BytesMoved), "oram-bytes/access")
	b.ReportMetric(1488, "paper-latency-cycles")
}

// BenchmarkTable2Energy regenerates Table 2's derived quantity: the energy
// of one ORAM access (paper: ≈984 nJ).
func BenchmarkTable2Energy(b *testing.B) {
	var nj float64
	c := power.Table2()
	for i := 0; i < b.N; i++ {
		nj = c.ORAMAccessEnergy(power.PaperORAMAccess())
	}
	b.ReportMetric(nj, "nJ/oram-access")
}

// BenchmarkFig1MaliciousLeak regenerates the Figure 1 demonstration: bits
// recovered from base_oram timing vs the enforcer.
func BenchmarkFig1MaliciousLeak(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	secret := make([]bool, 64)
	for i := range secret {
		secret[i] = rng.Intn(2) == 1
	}
	var res LeakDemoResult
	for i := 0; i < b.N; i++ {
		res = RunLeakDemo(secret)
	}
	b.ReportMetric(float64(res.UnprotectedBits), "bits-leaked-unprotected")
	shielded := 0.0
	if !res.ShieldedTraceEq {
		shielded = 1
	}
	b.ReportMetric(shielded, "bits-visible-shielded")
}

// BenchmarkFig2InputDependence regenerates Figure 2: the input-dependent
// ORAM rate gap for perlbench (paper: ~80×).
func BenchmarkFig2InputDependence(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		s := experiments.Quick()
		gap := func(spec workload.Spec) float64 {
			r, err := sim.Run(spec, sim.Config{
				Scheme: sim.BaseORAM, Instructions: s.Instructions,
				WarmupInstrs: s.Warmup, WindowInstrs: s.WindowInstrs,
			})
			if err != nil {
				b.Fatal(err)
			}
			var sum float64
			for _, w := range r.Windows {
				sum += w.InstrPerMem
			}
			return sum / float64(len(r.Windows))
		}
		ratio = gap(workload.PerlbenchInput("splitmail")) / gap(workload.PerlbenchInput("diffmail"))
	}
	b.ReportMetric(ratio, "perlbench-input-rate-ratio")
	b.ReportMetric(80, "paper-ratio")
}

// BenchmarkFig5RateSweep regenerates Figure 5's extremes for mcf: overhead
// at the fastest vs slowest static rates.
func BenchmarkFig5RateSweep(b *testing.B) {
	var pts []experiments.Fig5Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig5Sweep(workload.MCF(), experiments.Quick())
	}
	b.ReportMetric(pts[0].PerfOverheadX, "mcf-perfX-at-fastest")
	b.ReportMetric(pts[len(pts)-1].PerfOverheadX, "mcf-perfX-at-slowest")
}

// BenchmarkFig6Baselines regenerates Figure 6's Avg column: performance
// overhead (× base_dram) and power for the five schemes.
func BenchmarkFig6Baselines(b *testing.B) {
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig6Rows(experiments.Quick())
	}
	for _, r := range rows {
		if r.Benchmark != "Avg" {
			continue
		}
		b.ReportMetric(r.PerfOverheadX, r.Scheme+"-perfX")
		b.ReportMetric(r.PowerWatts, r.Scheme+"-W")
	}
}

// BenchmarkFig7Stability regenerates Figure 7's headline behaviour: the
// dynamic scheme's IPC stays near base_oram for libquantum (paper: 8%
// overhead).
func BenchmarkFig7Stability(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		s := experiments.Quick()
		spec, _ := workload.ByName("libquantum")
		oram, err := sim.Run(spec, sim.Config{Scheme: sim.BaseORAM, Instructions: s.Instructions, WarmupInstrs: s.Warmup})
		if err != nil {
			b.Fatal(err)
		}
		dyn, err := sim.Run(spec, sim.Config{
			Scheme: sim.DynamicORAM, NumRates: 4, EpochGrowth: 2,
			Instructions: s.Instructions, WarmupInstrs: s.Warmup, EpochFirstLen: s.EpochFirstLen,
		})
		if err != nil {
			b.Fatal(err)
		}
		overhead = float64(dyn.Cycles)/float64(oram.Cycles) - 1
	}
	b.ReportMetric(overhead*100, "libquantum-dyn-vs-oram-%")
	b.ReportMetric(8, "paper-%")
}

// BenchmarkFig8aVaryRates regenerates Figure 8a's budget column: leakage
// halves as |R| drops 16 → 4.
func BenchmarkFig8aVaryRates(b *testing.B) {
	var l16, l4 float64
	for i := 0; i < b.N; i++ {
		l16 = float64(leakage.PaperBudget(16, 2).ORAMBits())
		l4 = float64(leakage.PaperBudget(4, 2).ORAMBits())
	}
	b.ReportMetric(l16, "R16-bits")
	b.ReportMetric(l4, "R4-bits")
}

// BenchmarkFig8bVaryEpochs regenerates Figure 8b's trade: E16 halves the
// budget vs E4 at a small performance cost (measured on sjeng).
func BenchmarkFig8bVaryEpochs(b *testing.B) {
	var e4X, e16X float64
	for i := 0; i < b.N; i++ {
		s := experiments.Quick()
		spec, _ := workload.ByName("sjeng")
		base, err := sim.Run(spec, sim.Config{Scheme: sim.BaseDRAM, Instructions: s.Instructions, WarmupInstrs: s.Warmup})
		if err != nil {
			b.Fatal(err)
		}
		run := func(growth uint64) float64 {
			r, err := sim.Run(spec, sim.Config{
				Scheme: sim.DynamicORAM, NumRates: 4, EpochGrowth: growth,
				Instructions: s.Instructions, WarmupInstrs: s.Warmup, EpochFirstLen: s.EpochFirstLen,
			})
			if err != nil {
				b.Fatal(err)
			}
			return r.PerfOverhead(base)
		}
		e4X, e16X = run(4), run(16)
	}
	b.ReportMetric(e4X, "E4-perfX-32bits")
	b.ReportMetric(e16X, "E16-perfX-16bits")
}

// BenchmarkLeakageBounds regenerates Example 2.1/6.1: the 64/126-bit
// dynamic bounds and the unprotected baseline's explosion.
func BenchmarkLeakageBounds(b *testing.B) {
	var oramBits, totalBits, unprot float64
	for i := 0; i < b.N; i++ {
		bud := leakage.PaperBudget(4, 2)
		oramBits = float64(bud.ORAMBits())
		totalBits = float64(bud.TotalBits())
		unprot = float64(leakage.UnprotectedBitsApprox(1e12, pathoram.PaperAccessLatency))
	}
	b.ReportMetric(oramBits, "example6.1-oram-bits")
	b.ReportMetric(totalBits, "example6.1-total-bits")
	b.ReportMetric(unprot, "unprotected-bits-1e12cyc")
}

// --- Ablation benches (DESIGN.md ✦) ---

// BenchmarkAblationPredictor compares Algorithm 1's shift divider against
// the exact divider (Equation 1) on the learner-critical workload gobmk.
func BenchmarkAblationPredictor(b *testing.B) {
	s := experiments.Quick()
	spec, _ := workload.ByName("gobmk")
	run := func(p core.Predictor) float64 {
		r, err := sim.Run(spec, sim.Config{
			Scheme: sim.DynamicORAM, NumRates: 4, EpochGrowth: 2,
			Instructions: s.Instructions, WarmupInstrs: s.Warmup,
			EpochFirstLen: s.EpochFirstLen, Predictor: p,
		})
		if err != nil {
			b.Fatal(err)
		}
		return float64(r.Cycles)
	}
	var shift, exact float64
	for i := 0; i < b.N; i++ {
		shift, exact = run(core.ShiftPredictor), run(core.ExactPredictor)
	}
	b.ReportMetric(shift/exact, "shift-vs-exact-cycles-ratio")
}

// BenchmarkAblationDiscretizer compares linear (paper) vs log-space rate
// discretization.
func BenchmarkAblationDiscretizer(b *testing.B) {
	s := experiments.Quick()
	spec, _ := workload.ByName("gcc")
	run := func(d core.Discretizer) float64 {
		r, err := sim.Run(spec, sim.Config{
			Scheme: sim.DynamicORAM, NumRates: 4, EpochGrowth: 2,
			Instructions: s.Instructions, WarmupInstrs: s.Warmup,
			EpochFirstLen: s.EpochFirstLen, Discretizer: d,
		})
		if err != nil {
			b.Fatal(err)
		}
		return r.Power.Watts()
	}
	var lin, lg float64
	for i := 0; i < b.N; i++ {
		lin, lg = run(core.LinearDiscretizer), run(core.LogDiscretizer)
	}
	b.ReportMetric(lin, "linear-W")
	b.ReportMetric(lg, "log-W")
}

// --- Micro-benches on the hot components ---

// fixedNonce is a deterministic nonce source for the calibration loop: it
// leaves the destination untouched, so every iteration encrypts under the
// same keystream and the measured work is exactly the AES-CTR arithmetic.
type fixedNonce struct{}

func (fixedNonce) Read(p []byte) (int, error) { return len(p), nil }

// BenchmarkCalibration is the CI hardware-calibration loop: a fixed,
// deterministic AES-CTR encrypt/decrypt round trip over a path-sized
// buffer — the primitive that dominates every ORAM hot path — with no I/O,
// goroutines, timers, or allocation. Its ns/op measures the machine, not
// the code under review: scripts/bench_compare.sh divides each fresh
// series by the ratio of the fresh calibration to the baseline's before
// applying the regression tolerance, so bench records from different
// runner generations stay comparable. Keep this loop byte-for-byte stable
// across PRs — changing it silently re-scales every cross-record
// comparison.
func BenchmarkCalibration(b *testing.B) {
	var key crypt.Key
	for i := range key {
		key[i] = byte(i)
	}
	c := crypt.NewCipher(key, fixedNonce{})
	pt := make([]byte, 4096)
	for i := range pt {
		pt[i] = byte(i * 7)
	}
	ct := make([]byte, len(pt)+crypt.NonceSize)
	out := make([]byte, len(pt))
	b.SetBytes(int64(2 * len(pt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncryptTo(ct, pt); err != nil {
			b.Fatal(err)
		}
		if err := c.DecryptTo(out, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnforcerFetch measures the enforcer's per-request cost.
func BenchmarkEnforcerFetch(b *testing.B) {
	e, err := core.NewEnforcer(core.EnforcerConfig{
		ORAMLatency: 1488,
		Rates:       core.PaperRates(4),
		InitialRate: core.InitialRate,
		Schedule:    core.EpochSchedule{FirstLen: 1 << 21, Growth: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	var done uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done = e.Fetch(done+500, uint64(i))
	}
}

// BenchmarkPathORAMAccess measures a functional recursive ORAM access
// (small tree).
func BenchmarkPathORAMAccess(b *testing.B) {
	var key crypt.Key
	o, err := pathoram.NewRecursive(pathoram.RecursiveConfig{
		DataBlocks: 512, DataBlockBytes: 64, PosMapBlockBytes: 32, Z: 3, Recursion: 2,
	}, key, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Access(pathoram.OpWrite, uint64(i%512), buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures end-to-end simulated instructions
// per second on the dynamic scheme.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := workload.ByName("bzip2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(spec, sim.Config{
			Scheme: sim.DynamicORAM, Instructions: 1_000_000, WarmupInstrs: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1_000_000) // report "bytes" as instructions for MB/s ≈ MIPS
}

// BenchmarkWorkloadGen measures the instruction generator.
func BenchmarkWorkloadGen(b *testing.B) {
	g, err := workload.NewGenerator(workload.MCF(), 1<<30, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
